// Package cliutil centralises the run-configuration vocabulary of the
// neutral command-line tools: the problem/scene/scheme/schedule/layout/tally
// flag block and its resolution into a core.Config. cmd/neutral and
// cmd/neutral-sweep register the whole block; cmd/neutral-serve shares the
// scene loading. One definition means the tools cannot drift apart on flag
// names, defaults or parsing rules.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/particle"
	"repro/internal/scene"
	"repro/internal/tally"
	"repro/internal/telemetry"
)

// RunFlags is the shared flag block. Values are bound by Register and
// resolved by Config.
type RunFlags struct {
	Problem   *string
	Scene     *string
	Scheme    *string
	Schedule  *string
	Chunk     *int
	Layout    *string
	Tally     *string
	Ordering  *string
	SortEvery *int
}

// Register installs the shared run-configuration flags onto fs (use
// flag.CommandLine for a main).
func Register(fs *flag.FlagSet) *RunFlags {
	return &RunFlags{
		Problem:  fs.String("problem", "csp", "built-in test problem: stream, scatter or csp"),
		Scene:    fs.String("scene", "", "JSON scene file describing the problem (overrides -problem)"),
		Scheme:   fs.String("scheme", "over-particles", "parallelisation scheme: over-particles or over-events"),
		Schedule: fs.String("schedule", "static", "schedule: static, static-chunk, dynamic, guided"),
		Chunk:    fs.Int("chunk", 0, "schedule chunk size"),
		Layout:   fs.String("layout", "aos", "particle layout: aos or soa"),
		Tally:    fs.String("tally", "atomic", "tally: atomic, private, serial, null or buffered"),
		Ordering: fs.String("ordering", "row-major",
			"mesh storage ordering: row-major or morton (Z-order curve)"),
		SortEvery: fs.Int("sort-every", 0,
			"sort the particle bank by cell every N steps (0 disables)"),
	}
}

// Config resolves the flag block into a core.Config at default scale (or
// paper scale when paper is set): the named problem preset, overridden by
// the -scene file when one was given, with scheme, schedule, layout and
// tally applied.
func (f *RunFlags) Config(paper bool) (core.Config, error) {
	p, err := mesh.ParseProblem(*f.Problem)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Default(p)
	if paper {
		cfg = core.Paper(p)
	}
	if *f.Scene != "" {
		sc, err := scene.LoadFile(*f.Scene)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Scene = sc
	}
	if cfg.Scheme, err = core.ParseScheme(*f.Scheme); err != nil {
		return core.Config{}, err
	}
	kind, err := core.ParseSchedule(*f.Schedule)
	if err != nil {
		return core.Config{}, err
	}
	cfg.Schedule = core.Schedule{Kind: kind, Chunk: *f.Chunk}
	if cfg.Layout, err = particle.ParseLayout(*f.Layout); err != nil {
		return core.Config{}, err
	}
	if cfg.Tally, err = tally.ParseMode(*f.Tally); err != nil {
		return core.Config{}, err
	}
	if cfg.Ordering, err = mesh.ParseOrdering(*f.Ordering); err != nil {
		return core.Config{}, err
	}
	cfg.SortEvery = *f.SortEvery
	return cfg, nil
}

// Describe labels the configured problem for output: the scene name (or
// hash prefix, for anonymous scenes) when a scene drives the run, the
// problem preset name otherwise.
func Describe(cfg core.Config) string {
	if cfg.Scene == nil {
		return cfg.Problem.String()
	}
	if cfg.Scene.Name != "" {
		return cfg.Scene.Name
	}
	return fmt.Sprintf("scene-%.12s", cfg.Scene.Hash())
}

// Phases converts solver phase timings into telemetry trace phases, in
// kernel order with zero phases dropped — the shared bridge between
// core.PhaseTimings and the Chrome trace export.
func Phases(p core.PhaseTimings) []telemetry.Phase {
	var out []telemetry.Phase
	p.Each(func(name string, d time.Duration) {
		out = append(out, telemetry.Phase{Name: name, Dur: d})
	})
	return out
}

// AttachTrace installs a per-step trace hook on sim that lays each step's
// phase spans onto the named track. Re-attach after every Reset — Reset
// clears the hook.
func AttachTrace(sim *core.Simulation, track *telemetry.Track) {
	sim.SetTrace(func(st core.StepTiming) {
		track.AddStep(st.Step, st.Wall, Phases(st.Phases))
	})
}

// WriteTraceFile writes the trace as Chrome trace-event JSON at path —
// loadable in chrome://tracing, Perfetto or Speedscope.
func WriteTraceFile(path string, tr *telemetry.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// PhaseSummary renders non-zero phase timings as "name 1.234s" pairs for
// the CLI result summaries; empty when the run attributed no phase time.
func PhaseSummary(p core.PhaseTimings) string {
	var parts []string
	p.Each(func(name string, d time.Duration) {
		parts = append(parts, fmt.Sprintf("%s %.3fs", name, d.Seconds()))
	})
	return strings.Join(parts, "  ")
}

// NewLogger builds the CLI structured logger: JSON when jsonFormat is set
// (one object per line, machine-ingestable), logfmt-style text otherwise.
func NewLogger(w io.Writer, jsonFormat bool) *slog.Logger {
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, nil))
	}
	return slog.New(slog.NewTextHandler(w, nil))
}
