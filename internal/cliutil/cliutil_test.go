package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/particle"
	"repro/internal/tally"
)

func parse(t *testing.T, args ...string) (*RunFlags, *flag.FlagSet) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f, fs
}

func TestConfigDefaults(t *testing.T) {
	f, _ := parse(t)
	cfg, err := f.Config(false)
	if err != nil {
		t.Fatal(err)
	}
	want := core.Default(mesh.CSP)
	if cfg.Problem != want.Problem || cfg.NX != want.NX || cfg.Particles != want.Particles {
		t.Errorf("default config drifted: %+v", cfg)
	}
	if cfg.Scheme != core.OverParticles || cfg.Layout != particle.AoS || cfg.Tally != tally.ModeAtomic {
		t.Errorf("default strategy drifted")
	}
	if cfg.Scene != nil {
		t.Error("no -scene flag but Scene set")
	}
}

func TestConfigFullBlock(t *testing.T) {
	f, _ := parse(t,
		"-problem", "scatter", "-scheme", "oe", "-schedule", "dynamic",
		"-chunk", "16", "-layout", "soa", "-tally", "buffered")
	cfg, err := f.Config(true)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Problem != mesh.Scatter || cfg.Particles != 10_000_000 {
		t.Errorf("paper scatter scale not applied: %+v", cfg)
	}
	if cfg.Scheme != core.OverEvents || cfg.Layout != particle.SoA || cfg.Tally != tally.ModeBuffered {
		t.Errorf("strategy flags not applied")
	}
	if cfg.Schedule.Kind != core.ScheduleDynamic || cfg.Schedule.Chunk != 16 {
		t.Errorf("schedule flags not applied: %+v", cfg.Schedule)
	}
}

func TestConfigSceneFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "box.json")
	const body = `{
		"name": "box",
		"materials": [{"name": "air", "density": 1e-10}],
		"sources": [{"x0": 1.0, "x1": 1.5, "y0": 1.0, "y1": 1.5}],
		"boundaries": {"x_hi": "vacuum"}
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	f, _ := parse(t, "-scene", path)
	cfg, err := f.Config(false)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scene == nil || cfg.Scene.Name != "box" || !cfg.Scene.HasVacuum() {
		t.Fatalf("scene file not loaded into config: %+v", cfg.Scene)
	}
	if Describe(cfg) != "box" {
		t.Errorf("Describe = %q, want box", Describe(cfg))
	}
	// The config must validate and run end to end under the scene.
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-problem", "bogus"},
		{"-scheme", "bogus"},
		{"-schedule", "bogus"},
		{"-layout", "bogus"},
		{"-tally", "bogus"},
		{"-scene", "/does/not/exist.json"},
	} {
		f, _ := parse(t, args...)
		if _, err := f.Config(false); err == nil {
			t.Errorf("%v: accepted", args)
		}
	}
}

func TestDescribePreset(t *testing.T) {
	cfg := core.Default(mesh.Stream)
	if Describe(cfg) != "stream" {
		t.Errorf("Describe(stream) = %q", Describe(cfg))
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// After validation the preset scene is attached; the label must not
	// change.
	if Describe(cfg) != "stream" {
		t.Errorf("Describe(validated stream) = %q", Describe(cfg))
	}
}
