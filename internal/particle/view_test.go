package particle

import (
	"testing"
)

// samples builds a small bank with a mix of statuses for view tests.
func sampleBank(layout Layout) *Bank {
	b := NewBank(layout, 6)
	for i := 0; i < b.Len(); i++ {
		p := Particle{
			X: float64(i) + 0.25, Y: float64(i) + 0.5,
			UX: 0.6, UY: -0.8,
			Energy: 1e6 + float64(i), Weight: 0.5,
			MFPToCollision: 1.5, TimeToCensus: 2e-8, Deposit: float64(i),
			CachedSigmaA: 3, CachedSigmaS: 4,
			CellX: int32(i), CellY: int32(i + 1), XSIndex: int32(10 * i),
			RNGCounter: uint64(i), ID: uint64(100 + i), Status: Alive,
		}
		b.Store(i, &p)
	}
	b.SetStatus(1, Census)
	b.SetStatus(4, Dead)
	return b
}

// TestGatherStatus checks the active-set builder returns exactly the
// matching slots, ascending, appended to the destination, in both layouts.
func TestGatherStatus(t *testing.T) {
	for _, layout := range []Layout{AoS, SoA} {
		b := sampleBank(layout)
		got := b.GatherStatus(nil, Alive)
		want := []int32{0, 2, 3, 5}
		if len(got) != len(want) {
			t.Fatalf("%v: gathered %v, want %v", layout, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: gathered %v, want %v", layout, got, want)
			}
		}
		// Appends to an existing prefix without clobbering it.
		pre := b.GatherStatus([]int32{99}, Census)
		if len(pre) != 2 || pre[0] != 99 || pre[1] != 1 {
			t.Errorf("%v: append gather = %v, want [99 1]", layout, pre)
		}
	}
}

// TestFlushDeposit checks the tally-flush field view reads the cell and
// empties the register without disturbing the rest of the record.
func TestFlushDeposit(t *testing.T) {
	for _, layout := range []Layout{AoS, SoA} {
		b := sampleBank(layout)
		var before Particle
		b.Load(3, &before)
		cx, cy, dep := b.FlushDeposit(3)
		if cx != before.CellX || cy != before.CellY || dep != before.Deposit {
			t.Errorf("%v: flush view (%d,%d,%v), want (%d,%d,%v)",
				layout, cx, cy, dep, before.CellX, before.CellY, before.Deposit)
		}
		var after Particle
		b.Load(3, &after)
		want := before
		want.Deposit = 0
		if after != want {
			t.Errorf("%v: flush disturbed the record:\n got %+v\nwant %+v", layout, after, want)
		}
	}
}

// TestAxisViews checks the facet-crossing field views against whole-record
// loads in both layouts.
func TestAxisViews(t *testing.T) {
	for _, layout := range []Layout{AoS, SoA} {
		b := sampleBank(layout)
		if got := b.CellAxis(2, 0); got != 2 {
			t.Errorf("%v: CellAxis x = %d, want 2", layout, got)
		}
		if got := b.CellAxis(2, 1); got != 3 {
			t.Errorf("%v: CellAxis y = %d, want 3", layout, got)
		}
		b.SetCellAxis(2, 0, 7)
		b.SetCellAxis(2, 1, 8)
		b.NegateUAxis(2, 0)
		var p Particle
		b.Load(2, &p)
		if p.CellX != 7 || p.CellY != 8 || p.UX != -0.6 || p.UY != -0.8 {
			t.Errorf("%v: axis writes landed wrong: %+v", layout, p)
		}
		b.NegateUAxis(2, 1)
		b.Load(2, &p)
		if p.UY != 0.8 {
			t.Errorf("%v: NegateUAxis y = %v, want 0.8", layout, p.UY)
		}
	}
}

// TestViewCommitKinematics checks the zero-copy view contract: kinematic
// writes through a View land in the bank after CommitKinematics, the
// non-kinematic fields survive untouched, and AoS views alias the record.
func TestViewCommitKinematics(t *testing.T) {
	for _, layout := range []Layout{AoS, SoA} {
		b := sampleBank(layout)
		var before Particle
		b.Load(3, &before)

		var scratch Particle
		p := b.View(3, &scratch)
		if (layout == AoS) != (p != &scratch) {
			t.Fatalf("%v: view aliasing wrong (scratch used: %v)", layout, p == &scratch)
		}
		p.X += 10
		p.TimeToCensus = 0
		p.MFPToCollision = 9.5
		p.CachedSigmaA = -1
		p.CachedSigmaS = -1
		b.CommitKinematics(3, p)

		var after Particle
		b.Load(3, &after)
		want := before
		want.X += 10
		want.TimeToCensus = 0
		want.MFPToCollision = 9.5
		want.CachedSigmaA = -1
		want.CachedSigmaS = -1
		if after != want {
			t.Errorf("%v: commit mismatch:\n got %+v\nwant %+v", layout, after, want)
		}
	}
}

// TestKinematicsLoadStore checks the copying kinematic paths used by the
// SoA kernels: a LoadKinematics/StoreKinematics round-trip publishes the
// kinematic fields and never touches weight, deposit, RNG, id or status.
func TestKinematicsLoadStore(t *testing.T) {
	for _, layout := range []Layout{AoS, SoA} {
		b := sampleBank(layout)
		var before Particle
		b.Load(2, &before)

		var p Particle
		b.LoadKinematics(2, &p)
		if p.X != before.X || p.Energy != before.Energy || p.CellY != before.CellY {
			t.Fatalf("%v: kinematic load missed fields: %+v", layout, p)
		}
		p.Y += 3
		p.CachedSigmaS = 11
		b.StoreKinematics(2, &p)

		var after Particle
		b.Load(2, &after)
		want := before
		want.Y += 3
		want.CachedSigmaS = 11
		if after != want {
			t.Errorf("%v: kinematic store mismatch:\n got %+v\nwant %+v", layout, after, want)
		}
	}
}

// TestRef checks in-place access is available exactly for AoS.
func TestRef(t *testing.T) {
	if p := NewBank(SoA, 2).Ref(0); p != nil {
		t.Error("SoA Ref returned a pointer")
	}
	b := NewBank(AoS, 2)
	p := b.Ref(1)
	if p == nil {
		t.Fatal("AoS Ref returned nil")
	}
	p.Weight = 0.125
	var got Particle
	b.Load(1, &got)
	if got.Weight != 0.125 {
		t.Error("AoS Ref write did not land in the bank")
	}
}
