package particle

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomBank fills an n-slot bank of the given layout with distinguishable
// records: every field derives from the slot's original index so a permuted
// bank can be checked record by record.
func randomBank(t *testing.T, layout Layout, n int, r *rand.Rand) *Bank {
	t.Helper()
	b := NewBank(layout, n)
	for i := 0; i < n; i++ {
		p := Particle{
			X: r.Float64(), Y: r.Float64(), UX: r.Float64(), UY: r.Float64(),
			Energy: 1e7 * r.Float64(), Weight: r.Float64(),
			MFPToCollision: r.Float64(), TimeToCensus: r.Float64(),
			Deposit: r.Float64(), CachedSigmaA: r.Float64(), CachedSigmaS: r.Float64(),
			CellX: int32(r.Intn(64)), CellY: int32(r.Intn(64)), XSIndex: int32(r.Intn(100)),
			RNGCounter: r.Uint64(), ID: uint64(i),
			Status: Status(r.Intn(4)),
		}
		b.Store(i, &p)
	}
	return b
}

// TestPermuteIsPermutation checks, for both layouts, that Permute places
// old[perm[i]] at slot i exactly — every field of every record, including the
// RNG stream identity (ID) and counter, so a sorted bank replays the same
// per-history variate sequences — and that totals over the bank are
// preserved as a multiset.
func TestPermuteIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, layout := range []Layout{AoS, SoA} {
		for _, n := range []int{1, 2, 17, 256} {
			t.Run(fmt.Sprintf("%v/n=%d", layout, n), func(t *testing.T) {
				b := randomBank(t, layout, n, r)
				old := make([]Particle, n)
				for i := 0; i < n; i++ {
					b.Load(i, &old[i])
				}
				wantW, wantE := b.TotalWeight(), b.TotalEnergy()

				perm := make([]int32, n)
				for i, v := range r.Perm(n) {
					perm[i] = int32(v)
				}
				want := make([]Particle, n)
				for i := range want {
					want[i] = old[perm[i]]
				}
				b.Permute(perm)

				var got Particle
				for i := 0; i < n; i++ {
					b.Load(i, &got)
					if got != want[i] {
						t.Fatalf("slot %d: got %+v, want %+v", i, got, want[i])
					}
				}
				// Multiset-preserving: the conservation aggregates cannot
				// move by more than FP reassociation of the slot order.
				if gotW := b.TotalWeight(); !approxEqual(gotW, wantW) {
					t.Errorf("total weight %g, want %g", gotW, wantW)
				}
				if gotE := b.TotalEnergy(); !approxEqual(gotE, wantE) {
					t.Errorf("total energy %g, want %g", gotE, wantE)
				}
				for i := range perm {
					if perm[i] != -1 {
						t.Fatalf("perm[%d] = %d, want consumed (-1)", i, perm[i])
					}
				}
			})
		}
	}
}

func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-12*scale
}

// TestPermuteIdentity checks the no-op permutation leaves the bank intact.
func TestPermuteIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, layout := range []Layout{AoS, SoA} {
		b := randomBank(t, layout, 32, r)
		var before, after Particle
		olds := make([]Particle, 32)
		for i := range olds {
			b.Load(i, &olds[i])
		}
		perm := make([]int32, 32)
		for i := range perm {
			perm[i] = int32(i)
		}
		b.Permute(perm)
		for i := range olds {
			before = olds[i]
			b.Load(i, &after)
			if before != after {
				t.Fatalf("%v: identity permutation moved slot %d", layout, i)
			}
		}
	}
}
