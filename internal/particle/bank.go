package particle

import (
	"fmt"
	"math"
	"unsafe"
)

// Layout selects the memory layout of a Bank.
type Layout int

const (
	// AoS stores one contiguous struct per particle. Best CPU layout for
	// Over Particles (paper Fig 5).
	AoS Layout = iota
	// SoA stores one contiguous array per field. The only layout used on
	// GPUs; on CPUs it loads a cache line per field per particle.
	SoA
)

// String names the layout as in the paper.
func (l Layout) String() string {
	switch l {
	case AoS:
		return "aos"
	case SoA:
		return "soa"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// ParseLayout converts a name to a Layout.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "aos":
		return AoS, nil
	case "soa":
		return SoA, nil
	default:
		return 0, fmt.Errorf("particle: unknown layout %q (want aos or soa)", s)
	}
}

// Bank is a fixed-capacity store of particles in either layout. Load and
// Store move particles between the bank and register-resident working
// copies; they are the only access path, so the layout difference is purely
// a memory-behaviour difference, exactly as in the C mini-app.
type Bank struct {
	layout Layout
	n      int

	// AoS storage.
	aos []Particle

	// SoA storage, one slice per field.
	x, y, ux, uy, energy, weight []float64
	mfp, tcens, deposit          []float64
	sigmaA, sigmaS               []float64
	cellX, cellY, xsIndex        []int32
	rngCounter, id               []uint64
	status                       []Status
}

// NewBank allocates a bank of n particles in the given layout.
func NewBank(layout Layout, n int) *Bank {
	b := &Bank{layout: layout, n: n}
	switch layout {
	case AoS:
		b.aos = make([]Particle, n)
	case SoA:
		b.x = make([]float64, n)
		b.y = make([]float64, n)
		b.ux = make([]float64, n)
		b.uy = make([]float64, n)
		b.energy = make([]float64, n)
		b.weight = make([]float64, n)
		b.mfp = make([]float64, n)
		b.tcens = make([]float64, n)
		b.deposit = make([]float64, n)
		b.sigmaA = make([]float64, n)
		b.sigmaS = make([]float64, n)
		b.cellX = make([]int32, n)
		b.cellY = make([]int32, n)
		b.xsIndex = make([]int32, n)
		b.rngCounter = make([]uint64, n)
		b.id = make([]uint64, n)
		b.status = make([]Status, n)
	default:
		panic(fmt.Sprintf("particle: unknown layout %v", layout))
	}
	return b
}

// Layout reports the bank's memory layout.
func (b *Bank) Layout() Layout { return b.layout }

// Len reports the particle count.
func (b *Bank) Len() int { return b.n }

// resized returns s with length n, reusing its backing array when the
// capacity allows and copying into a fresh allocation otherwise — the shared
// capacity path behind Resize and the SoA Append columns.
func resized[T any](s []T, n int) []T {
	if n <= cap(s) {
		return s[:n]
	}
	out := make([]T, n, growCap(cap(s), n))
	copy(out, s)
	return out
}

// growCap doubles the capacity until it covers n, so a splitting cascade
// appends in amortised O(1) instead of reallocating every column per child.
func growCap(c, n int) int {
	if c == 0 {
		return n
	}
	for c < n {
		c *= 2
	}
	return c
}

// Append adds a particle to the end of the bank, growing the storage of
// either layout, and returns its slot index. Population-control splitting is
// the only writer: the bank is otherwise fixed-population, exactly as in the
// C mini-app. Append is not safe for concurrent use; the solver only calls
// it from the serial population-control pass between timesteps.
func (b *Bank) Append(p *Particle) int {
	i := b.n
	b.Resize(b.n + 1)
	b.Store(i, p)
	return i
}

// Resize sets the bank's particle count to n, reusing the existing backing
// arrays whenever their capacity allows (both layouts). Growth exposes
// zero-valued records in slots that were never stored; shrinking keeps the
// capacity for later regrowth, which is how Reset reuses a bank that a
// weight-window run grew past its source population.
func (b *Bank) Resize(n int) {
	if n == b.n {
		return
	}
	if b.layout == AoS {
		if n > b.n && n <= cap(b.aos) {
			// Reused slots may hold stale records from a previous run;
			// re-zero them so growth always exposes blank particles.
			clear(b.aos[b.n:n])
		}
		b.aos = resized(b.aos, n)
		b.n = n
		return
	}
	grow := n > b.n
	b.x = resizedClear(b.x, b.n, n, grow)
	b.y = resizedClear(b.y, b.n, n, grow)
	b.ux = resizedClear(b.ux, b.n, n, grow)
	b.uy = resizedClear(b.uy, b.n, n, grow)
	b.energy = resizedClear(b.energy, b.n, n, grow)
	b.weight = resizedClear(b.weight, b.n, n, grow)
	b.mfp = resizedClear(b.mfp, b.n, n, grow)
	b.tcens = resizedClear(b.tcens, b.n, n, grow)
	b.deposit = resizedClear(b.deposit, b.n, n, grow)
	b.sigmaA = resizedClear(b.sigmaA, b.n, n, grow)
	b.sigmaS = resizedClear(b.sigmaS, b.n, n, grow)
	b.cellX = resizedClear(b.cellX, b.n, n, grow)
	b.cellY = resizedClear(b.cellY, b.n, n, grow)
	b.xsIndex = resizedClear(b.xsIndex, b.n, n, grow)
	b.rngCounter = resizedClear(b.rngCounter, b.n, n, grow)
	b.id = resizedClear(b.id, b.n, n, grow)
	b.status = resizedClear(b.status, b.n, n, grow)
	b.n = n
}

// resizedClear is resized plus the stale-slot re-zeroing growth needs when
// the backing array is reused.
func resizedClear[T any](s []T, oldN, n int, grow bool) []T {
	if grow && n <= cap(s) {
		clear(s[oldN:n])
	}
	return resized(s, n)
}

// Load copies particle i into the working copy p.
func (b *Bank) Load(i int, p *Particle) {
	if b.layout == AoS {
		*p = b.aos[i]
		return
	}
	p.X = b.x[i]
	p.Y = b.y[i]
	p.UX = b.ux[i]
	p.UY = b.uy[i]
	p.Energy = b.energy[i]
	p.Weight = b.weight[i]
	p.MFPToCollision = b.mfp[i]
	p.TimeToCensus = b.tcens[i]
	p.Deposit = b.deposit[i]
	p.CachedSigmaA = b.sigmaA[i]
	p.CachedSigmaS = b.sigmaS[i]
	p.CellX = b.cellX[i]
	p.CellY = b.cellY[i]
	p.XSIndex = b.xsIndex[i]
	p.RNGCounter = b.rngCounter[i]
	p.ID = b.id[i]
	p.Status = b.status[i]
}

// Store copies the working copy p back into slot i.
func (b *Bank) Store(i int, p *Particle) {
	if b.layout == AoS {
		b.aos[i] = *p
		return
	}
	b.x[i] = p.X
	b.y[i] = p.Y
	b.ux[i] = p.UX
	b.uy[i] = p.UY
	b.energy[i] = p.Energy
	b.weight[i] = p.Weight
	b.mfp[i] = p.MFPToCollision
	b.tcens[i] = p.TimeToCensus
	b.deposit[i] = p.Deposit
	b.sigmaA[i] = p.CachedSigmaA
	b.sigmaS[i] = p.CachedSigmaS
	b.cellX[i] = p.CellX
	b.cellY[i] = p.CellY
	b.xsIndex[i] = p.XSIndex
	b.rngCounter[i] = p.RNGCounter
	b.id[i] = p.ID
	b.status[i] = p.Status
}

// LoadKinematics copies the fields the Over Events event kernel reads —
// position, direction, energy, the distance/censustime registers, the cached
// cross sections and the cell — into the working copy p. For AoS the whole
// contiguous record is copied (one block copy is as cheap as picking
// fields); for SoA only the twelve kinematic columns are touched, skipping
// weight, deposit, RNG, id and status. The untouched fields of p are
// UNDEFINED after a SoA load: callers must pair this with StoreKinematics
// (never Store) and must not read the non-kinematic fields.
func (b *Bank) LoadKinematics(i int, p *Particle) {
	if b.layout == AoS {
		*p = b.aos[i]
		return
	}
	p.X = b.x[i]
	p.Y = b.y[i]
	p.UX = b.ux[i]
	p.UY = b.uy[i]
	p.Energy = b.energy[i]
	p.MFPToCollision = b.mfp[i]
	p.TimeToCensus = b.tcens[i]
	p.CachedSigmaA = b.sigmaA[i]
	p.CachedSigmaS = b.sigmaS[i]
	p.CellX = b.cellX[i]
	p.CellY = b.cellY[i]
	p.XSIndex = b.xsIndex[i]
}

// StoreKinematics writes back the fields the event kernel can modify:
// position, the distance/census registers, and the cached cross-section
// state. AoS stores the whole record (the loaded values ride along for the
// untouched fields); SoA writes only the seven modified columns. Status is
// never written — use SetStatus for the census transition.
func (b *Bank) StoreKinematics(i int, p *Particle) {
	if b.layout == AoS {
		b.aos[i] = *p
		return
	}
	b.x[i] = p.X
	b.y[i] = p.Y
	b.mfp[i] = p.MFPToCollision
	b.tcens[i] = p.TimeToCensus
	b.sigmaA[i] = p.CachedSigmaA
	b.sigmaS[i] = p.CachedSigmaS
	b.xsIndex[i] = p.XSIndex
}

// TouchSlot reads one field from each cache line of slot i's kinematic
// state and folds the bytes into a value the caller must keep live — a
// portable software prefetch for kernels that know which slot they will
// visit a few iterations ahead. AoS touches both lines of the record; SoA
// touches the two columns the event kernel's address computations need
// first.
func (b *Bank) TouchSlot(i int) uint64 {
	if b.layout == AoS {
		p := &b.aos[i]
		return math.Float64bits(p.X) + uint64(p.CellX)
	}
	return math.Float64bits(b.x[i]) + uint64(b.cellX[i])
}

// Ref returns a pointer to slot i's record for in-place access when the
// layout stores whole records (AoS), and nil for SoA. In-place access skips
// the two record copies a Load/Store round-trip costs; callers must fall
// back to the copying paths when Ref returns nil.
func (b *Bank) Ref(i int) *Particle {
	if b.layout == AoS {
		return &b.aos[i]
	}
	return nil
}

// View returns a mutable view of slot i's kinematic state: the record
// itself for AoS (zero-copy), or scratch filled by LoadKinematics for SoA.
// Writes through the returned pointer must be published with
// CommitKinematics, which is a no-op when the view aliases the record.
func (b *Bank) View(i int, scratch *Particle) *Particle {
	if b.layout == AoS {
		return &b.aos[i]
	}
	b.LoadKinematics(i, scratch)
	return scratch
}

// CommitKinematics publishes kinematic-field writes made through a View:
// nothing to do for AoS (the view is the record), a StoreKinematics for SoA.
func (b *Bank) CommitKinematics(i int, p *Particle) {
	if b.layout == AoS {
		return
	}
	b.StoreKinematics(i, p)
}

// FlushDeposit reads the cell coordinates and deposit register of slot i and
// zeroes the register — the tally-flush access path. The Over Events tally
// and census kernels use it to flush without streaming whole records.
func (b *Bank) FlushDeposit(i int) (cellX, cellY int32, dep float64) {
	if b.layout == AoS {
		p := &b.aos[i]
		cellX, cellY, dep = p.CellX, p.CellY, p.Deposit
		p.Deposit = 0
		return
	}
	cellX, cellY, dep = b.cellX[i], b.cellY[i], b.deposit[i]
	b.deposit[i] = 0
	return
}

// CellAxis reads the cell coordinate of slot i along axis (0 = x, 1 = y).
func (b *Bank) CellAxis(i, axis int) int32 {
	if b.layout == AoS {
		if axis == 0 {
			return b.aos[i].CellX
		}
		return b.aos[i].CellY
	}
	if axis == 0 {
		return b.cellX[i]
	}
	return b.cellY[i]
}

// SetCellAxis writes the cell coordinate of slot i along axis.
func (b *Bank) SetCellAxis(i, axis int, v int32) {
	if b.layout == AoS {
		if axis == 0 {
			b.aos[i].CellX = v
		} else {
			b.aos[i].CellY = v
		}
		return
	}
	if axis == 0 {
		b.cellX[i] = v
	} else {
		b.cellY[i] = v
	}
}

// NegateUAxis flips the direction component of slot i along axis — the
// boundary-reflection write.
func (b *Bank) NegateUAxis(i, axis int) {
	if b.layout == AoS {
		if axis == 0 {
			b.aos[i].UX = -b.aos[i].UX
		} else {
			b.aos[i].UY = -b.aos[i].UY
		}
		return
	}
	if axis == 0 {
		b.ux[i] = -b.ux[i]
	} else {
		b.uy[i] = -b.uy[i]
	}
}

// Permute rearranges the bank so slot i holds the record previously in slot
// perm[i]. perm must be a permutation of [0, Len()); it is consumed (every
// entry is overwritten with -1) by the call. Both layouts permute through the
// canonical Load/Store record path, cycle by cycle, so the pass costs one
// record move per slot and no bank-sized scratch — the periodic cell-sort
// pass runs it once per controlled timestep on banks up to paper scale.
func (b *Bank) Permute(perm []int32) {
	if len(perm) != b.n {
		panic(fmt.Sprintf("particle: permutation length %d over %d-slot bank", len(perm), b.n))
	}
	var hold, tmp Particle
	for start := range perm {
		src := perm[start]
		if src < 0 || int(src) == start {
			perm[start] = -1
			continue
		}
		// Walk the cycle: each slot is read just before it is written, so
		// one held record suffices.
		b.Load(start, &hold)
		j := start
		for {
			perm[j] = -1
			if int(src) == start {
				b.Store(j, &hold)
				break
			}
			b.Load(int(src), &tmp)
			b.Store(j, &tmp)
			j = int(src)
			src = perm[j]
		}
	}
}

// StatusOf reads only the status of slot i; Over Events kernels use this to
// gather active particles without loading whole records.
func (b *Bank) StatusOf(i int) Status {
	if b.layout == AoS {
		return b.aos[i].Status
	}
	return b.status[i]
}

// SetStatus writes only the status of slot i.
func (b *Bank) SetStatus(i int, s Status) {
	if b.layout == AoS {
		b.aos[i].Status = s
		return
	}
	b.status[i] = s
}

// GatherStatus appends the indices of every slot whose status equals s to
// dst (ascending) and returns the extended slice. It is the active-set
// builder for the compacted Over Events scheme: one O(N) sweep per timestep
// replaces the per-round full-bank scans, and it reads only the status
// column (or field), never whole records.
func (b *Bank) GatherStatus(dst []int32, s Status) []int32 {
	if b.layout == SoA {
		for i, st := range b.status {
			if st == s {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for i := range b.aos {
		if b.aos[i].Status == s {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

// Escape terminates slot i at a vacuum boundary: the status becomes Escaped
// and the weight is zeroed so the population audits exclude it. It returns
// the weight and weight-energy (weight-eV) the history carried out of the
// domain — the per-edge leakage contribution.
func (b *Bank) Escape(i int) (weight, weightEnergy float64) {
	if b.layout == AoS {
		p := &b.aos[i]
		weight, weightEnergy = p.Weight, p.Weight*p.Energy
		p.Weight = 0
		p.Status = Escaped
		return
	}
	weight, weightEnergy = b.weight[i], b.weight[i]*b.energy[i]
	b.weight[i] = 0
	b.status[i] = Escaped
	return
}

// CountStatus tallies particles by status. Escaped particles count as dead:
// both are terminated histories, distinguished only by where their
// weight-energy went (leakage versus deposition).
func (b *Bank) CountStatus() (alive, census, dead int) {
	for i := 0; i < b.n; i++ {
		switch b.StatusOf(i) {
		case Alive:
			alive++
		case Census:
			census++
		case Dead, Escaped:
			dead++
		}
	}
	return alive, census, dead
}

// TotalWeight sums particle weights across the bank (population
// conservation audits). Field-direct paths read only the weight column (and
// the weight field for AoS) instead of streaming whole records through
// Load, so the per-step conservation audit stays cheap on large banks.
func (b *Bank) TotalWeight() float64 {
	var sum float64
	if b.layout == SoA {
		for _, w := range b.weight {
			sum += w
		}
		return sum
	}
	for i := range b.aos {
		sum += b.aos[i].Weight
	}
	return sum
}

// TotalEnergy sums weight-scaled kinetic energy across the in-flight bank
// (Alive and Census), in weight-eV (energy conservation audits). Like
// TotalWeight, it reads only the fields it needs in either layout.
func (b *Bank) TotalEnergy() float64 {
	var sum float64
	if b.layout == SoA {
		for i := range b.status {
			if b.status[i] == Alive || b.status[i] == Census {
				sum += b.weight[i] * b.energy[i]
			}
		}
		return sum
	}
	for i := range b.aos {
		if p := &b.aos[i]; p.Status == Alive || p.Status == Census {
			sum += p.Weight * p.Energy
		}
	}
	return sum
}

// BytesPerParticle reports the storage footprint of one particle record —
// the traffic the Over Events scheme streams per slot sweep, which the
// architecture model prices. It is derived from the element sizes of the
// SoA field set (11 float64 columns, 3 int32, 2 uint64, 1 status byte)
// rather than hand-summed; TestBytesPerParticleMatchesFieldSet guards it
// against drift when fields are added.
const BytesPerParticle = int(11*unsafe.Sizeof(float64(0)) +
	3*unsafe.Sizeof(int32(0)) +
	2*unsafe.Sizeof(uint64(0)) +
	unsafe.Sizeof(Status(0)))
