package particle

import (
	"repro/internal/mesh"
	"repro/internal/rng"
)

// SourceEnergy is the birth kinetic energy of every particle, in eV. A
// 10 MeV fast source gives the ~4.4 m of track per 1e-7 s timestep that
// reproduces the paper's "around 7000 facets ... per simulated particle" on
// the stream problem at 4000^2 resolution.
const SourceEnergy = 1.0e7

// SourceWeight is the birth statistical weight of every particle.
const SourceWeight = 1.0

// SourceTerm is one weighted birth region of a scene: the sampler-level form
// of a scene source. Share apportions the bank population across terms;
// Weight and Energy set the birth record; the jitters widen birth energy,
// weight and census time into uniform windows (a zero jitter draws nothing).
type SourceTerm struct {
	Box    mesh.SourceBox
	Share  float64
	Weight float64
	Energy float64
	// EnergyJitter e samples the birth energy from Energy·[1−e, 1+e).
	EnergyJitter float64
	// WeightJitter w samples the birth weight from Weight·[1−w, 1+w).
	WeightJitter float64
	// TimeJitter t samples the birth time-to-census from dt·(1−t, 1],
	// spreading births across the first timestep.
	TimeJitter float64
}

// Populate fills the bank with n freshly born particles sampled uniformly
// from the source box with isotropic directions. Random numbers determine
// the initial location and direction (paper §IV-F); each particle's stream
// key is its index, so populations are identical across layouts, schemes
// and thread counts.
func Populate(b *Bank, m *mesh.Mesh, src mesh.SourceBox, dt float64, seed uint64) {
	PopulateFamily(b, m, src, dt, seed, 0)
}

// PopulateFamily is Populate over a shifted identity range: particle i is
// born with stream identity idBase+i. Ensemble replica r passes
// idBase = r*particles, so every replica draws from a structurally disjoint
// family of Threefry streams under one simulation seed — no replica ever
// shares a variate with another. idBase 0 reproduces Populate exactly.
func PopulateFamily(b *Bank, m *mesh.Mesh, src mesh.SourceBox, dt float64, seed, idBase uint64) {
	PopulateSources(b, m, []SourceTerm{{
		Box: src, Share: 1, Weight: SourceWeight, Energy: SourceEnergy,
	}}, dt, seed, idBase)
}

// sourceCuts apportions n bank slots across the terms by share: term k owns
// the index range [cuts[k-1], cuts[k]). The split is a pure function of the
// shares and n — no random draws — so the apportionment is identical across
// layouts, schemes, thread counts and snapshot round-trips, and replica
// families (which share it) stay aligned source-for-source.
func sourceCuts(terms []SourceTerm, n int) []int {
	total := 0.0
	for _, t := range terms {
		total += t.Share
	}
	cuts := make([]int, len(terms))
	cum := 0.0
	for k, t := range terms {
		cum += t.Share
		cuts[k] = int(cum / total * float64(n))
	}
	cuts[len(cuts)-1] = n // exact, independent of rounding drift
	return cuts
}

// PopulateSources fills the bank from a weighted multi-source description:
// particle i (stream identity idBase+i) is assigned a term by the
// deterministic share split, then samples position, direction and
// mean-free-path budget from its own counter-based stream — the exact draws
// of the paper's single source — followed by the term's optional jitter
// draws. A single unit-weight, jitter-free term reproduces the historical
// Populate bit for bit. It returns the total birth statistical weight and
// birth weight-energy (weight-eV), the conservation-audit baselines, which
// are exact sums over the records just stored.
func PopulateSources(b *Bank, m *mesh.Mesh, terms []SourceTerm, dt float64, seed, idBase uint64) (birthWeight, birthEnergy float64) {
	cuts := sourceCuts(terms, b.Len())
	var p Particle
	term := 0
	for i := 0; i < b.Len(); i++ {
		for i >= cuts[term] {
			term++
		}
		t := &terms[term]
		s := rng.NewStream(seed, idBase+uint64(i))
		x, y := rng.PointInBox(&s, t.Box.X0, t.Box.X1, t.Box.Y0, t.Box.Y1)
		ux, uy := rng.IsotropicDirection(&s)
		mfp := rng.MeanFreePaths(&s)
		energy := t.Energy
		if t.EnergyJitter > 0 {
			energy *= 1 + t.EnergyJitter*(2*s.Uniform()-1)
		}
		weight := t.Weight
		if t.WeightJitter > 0 {
			weight *= 1 + t.WeightJitter*(2*s.Uniform()-1)
		}
		tcens := dt
		if t.TimeJitter > 0 {
			tcens = dt * (1 - t.TimeJitter*s.Uniform())
		}
		cx, cy := m.CellOf(x, y)

		p = Particle{
			X: x, Y: y,
			UX: ux, UY: uy,
			Energy:         energy,
			Weight:         weight,
			MFPToCollision: mfp,
			TimeToCensus:   tcens,
			CachedSigmaA:   -1, // not yet looked up
			CachedSigmaS:   -1,
			CellX:          int32(cx),
			CellY:          int32(cy),
			ID:             idBase + uint64(i),
			RNGCounter:     s.Counter(),
			Status:         Alive,
		}
		b.Store(i, &p)
		birthWeight += weight
		birthEnergy += weight * energy
	}
	return birthWeight, birthEnergy
}
