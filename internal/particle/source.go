package particle

import (
	"repro/internal/mesh"
	"repro/internal/rng"
)

// SourceEnergy is the birth kinetic energy of every particle, in eV. A
// 10 MeV fast source gives the ~4.4 m of track per 1e-7 s timestep that
// reproduces the paper's "around 7000 facets ... per simulated particle" on
// the stream problem at 4000^2 resolution.
const SourceEnergy = 1.0e7

// SourceWeight is the birth statistical weight of every particle.
const SourceWeight = 1.0

// Populate fills the bank with n freshly born particles sampled uniformly
// from the source box with isotropic directions. Random numbers determine
// the initial location and direction (paper §IV-F); each particle's stream
// key is its index, so populations are identical across layouts, schemes
// and thread counts.
func Populate(b *Bank, m *mesh.Mesh, src mesh.SourceBox, dt float64, seed uint64) {
	PopulateFamily(b, m, src, dt, seed, 0)
}

// PopulateFamily is Populate over a shifted identity range: particle i is
// born with stream identity idBase+i. Ensemble replica r passes
// idBase = r*particles, so every replica draws from a structurally disjoint
// family of Threefry streams under one simulation seed — no replica ever
// shares a variate with another. idBase 0 reproduces Populate exactly.
func PopulateFamily(b *Bank, m *mesh.Mesh, src mesh.SourceBox, dt float64, seed, idBase uint64) {
	var p Particle
	for i := 0; i < b.Len(); i++ {
		s := rng.NewStream(seed, idBase+uint64(i))
		x, y := rng.PointInBox(&s, src.X0, src.X1, src.Y0, src.Y1)
		ux, uy := rng.IsotropicDirection(&s)
		mfp := rng.MeanFreePaths(&s)
		cx, cy := m.CellOf(x, y)

		p = Particle{
			X: x, Y: y,
			UX: ux, UY: uy,
			Energy:         SourceEnergy,
			Weight:         SourceWeight,
			MFPToCollision: mfp,
			TimeToCensus:   dt,
			CachedSigmaA:   -1, // not yet looked up
			CachedSigmaS:   -1,
			CellX:          int32(cx),
			CellY:          int32(cy),
			ID:             idBase + uint64(i),
			RNGCounter:     s.Counter(),
			Status:         Alive,
		}
		b.Store(i, &p)
	}
}
