package particle

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"unsafe"

	"repro/internal/mesh"
)

func TestLayoutRoundTrip(t *testing.T) {
	for _, layout := range []Layout{AoS, SoA} {
		b := NewBank(layout, 8)
		want := Particle{
			X: 1.5, Y: 2.5, UX: 0.6, UY: 0.8,
			Energy: 1e6, Weight: 0.75,
			MFPToCollision: 1.25, TimeToCensus: 3e-8, Deposit: 42,
			CellX: 7, CellY: 9, XSIndex: 123,
			RNGCounter: 999, ID: 5, Status: Census,
		}
		b.Store(3, &want)
		var got Particle
		b.Load(3, &got)
		if got != want {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", layout, got, want)
		}
		// Other slots untouched.
		b.Load(2, &got)
		if got != (Particle{}) {
			t.Errorf("%v: neighbouring slot contaminated: %+v", layout, got)
		}
	}
}

// TestLayoutsEquivalent stores random particles into both layouts and
// verifies identical read-back: the layout is purely a memory-behaviour
// choice and must never change results.
func TestLayoutsEquivalent(t *testing.T) {
	f := func(x, y, e, w float64, cx, cy int32, id, ctr uint64, st uint8) bool {
		p := Particle{
			X: x, Y: y, UX: 1, UY: 0, Energy: math.Abs(e), Weight: math.Abs(w),
			CellX: cx, CellY: cy, ID: id, RNGCounter: ctr, Status: Status(st % 3),
		}
		a := NewBank(AoS, 4)
		s := NewBank(SoA, 4)
		a.Store(1, &p)
		s.Store(1, &p)
		var pa, ps Particle
		a.Load(1, &pa)
		s.Load(1, &ps)
		return pa == ps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusFastPath(t *testing.T) {
	for _, layout := range []Layout{AoS, SoA} {
		b := NewBank(layout, 4)
		b.SetStatus(2, Dead)
		if b.StatusOf(2) != Dead || b.StatusOf(1) != Alive {
			t.Errorf("%v: status fast path broken", layout)
		}
		var p Particle
		b.Load(2, &p)
		if p.Status != Dead {
			t.Errorf("%v: SetStatus not visible through Load", layout)
		}
	}
}

func TestCountStatus(t *testing.T) {
	b := NewBank(SoA, 10)
	for i := 0; i < 10; i++ {
		switch {
		case i < 5:
			b.SetStatus(i, Alive)
		case i < 8:
			b.SetStatus(i, Census)
		default:
			b.SetStatus(i, Dead)
		}
	}
	alive, census, dead := b.CountStatus()
	if alive != 5 || census != 3 || dead != 2 {
		t.Fatalf("CountStatus = %d,%d,%d want 5,3,2", alive, census, dead)
	}
}

func TestPopulateDeterministicAcrossLayouts(t *testing.T) {
	m, err := mesh.New(64, 64, mesh.Extent, mesh.Extent, mesh.VacuumDensity)
	if err != nil {
		t.Fatal(err)
	}
	src := mesh.SourceBox{X0: 0, X1: mesh.Extent / 10, Y0: 0, Y1: mesh.Extent / 10}
	const n = 500
	a := NewBank(AoS, n)
	s := NewBank(SoA, n)
	Populate(a, m, src, 1e-7, 42)
	Populate(s, m, src, 1e-7, 42)
	var pa, ps Particle
	for i := 0; i < n; i++ {
		a.Load(i, &pa)
		s.Load(i, &ps)
		if pa != ps {
			t.Fatalf("particle %d differs across layouts:\n%+v\n%+v", i, pa, ps)
		}
	}
}

func TestPopulateInvariants(t *testing.T) {
	m, err := mesh.New(128, 128, mesh.Extent, mesh.Extent, mesh.VacuumDensity)
	if err != nil {
		t.Fatal(err)
	}
	c, h := mesh.Extent/2, mesh.Extent/40
	src := mesh.SourceBox{X0: c - h, X1: c + h, Y0: c - h, Y1: c + h}
	const n = 2000
	b := NewBank(AoS, n)
	Populate(b, m, src, 1e-7, 7)
	var p Particle
	for i := 0; i < n; i++ {
		b.Load(i, &p)
		if p.X < src.X0 || p.X >= src.X1 ||
			p.Y < src.Y0 || p.Y >= src.Y1 {
			t.Fatalf("particle %d born outside source box: (%v, %v)", i, p.X, p.Y)
		}
		if r := p.UX*p.UX + p.UY*p.UY; math.Abs(r-1) > 1e-12 {
			t.Fatalf("particle %d direction not unit: %v", i, r)
		}
		if p.Energy != SourceEnergy || p.Weight != SourceWeight {
			t.Fatalf("particle %d birth energy/weight wrong: %v/%v", i, p.Energy, p.Weight)
		}
		if p.MFPToCollision <= 0 {
			t.Fatalf("particle %d born without sampled mean free paths", i)
		}
		if p.TimeToCensus != 1e-7 || p.Status != Alive || p.ID != uint64(i) {
			t.Fatalf("particle %d birth state wrong: %+v", i, p)
		}
		cx, cy := m.CellOf(p.X, p.Y)
		if int32(cx) != p.CellX || int32(cy) != p.CellY {
			t.Fatalf("particle %d cell coordinates stale", i)
		}
	}
	if w := b.TotalWeight(); math.Abs(w-n*SourceWeight) > 1e-9 {
		t.Fatalf("total birth weight = %v, want %v", w, float64(n)*SourceWeight)
	}
	if e := b.TotalEnergy(); math.Abs(e-n*SourceWeight*SourceEnergy) > 1e-3 {
		t.Fatalf("total birth energy = %v", e)
	}
}

func TestPopulateSeedSensitivity(t *testing.T) {
	m, _ := mesh.New(64, 64, mesh.Extent, mesh.Extent, mesh.VacuumDensity)
	src := mesh.SourceBox{X0: 0, X1: mesh.Extent / 10, Y0: 0, Y1: mesh.Extent / 10}
	a := NewBank(AoS, 100)
	b := NewBank(AoS, 100)
	Populate(a, m, src, 1e-7, 1)
	Populate(b, m, src, 1e-7, 2)
	var pa, pb Particle
	same := 0
	for i := 0; i < 100; i++ {
		a.Load(i, &pa)
		b.Load(i, &pb)
		if pa.X == pb.X && pa.Y == pb.Y {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 particles identical across different seeds", same)
	}
}

func TestParseLayout(t *testing.T) {
	if l, err := ParseLayout("aos"); err != nil || l != AoS {
		t.Error("aos parse failed")
	}
	if l, err := ParseLayout("soa"); err != nil || l != SoA {
		t.Error("soa parse failed")
	}
	if _, err := ParseLayout("other"); err == nil {
		t.Error("bogus layout accepted")
	}
}

func BenchmarkLoadStoreAoS(b *testing.B) {
	bank := NewBank(AoS, 1024)
	var p Particle
	for i := 0; i < b.N; i++ {
		idx := i & 1023
		bank.Load(idx, &p)
		p.X += 1
		bank.Store(idx, &p)
	}
}

func BenchmarkLoadStoreSoA(b *testing.B) {
	bank := NewBank(SoA, 1024)
	var p Particle
	for i := 0; i < b.N; i++ {
		idx := i & 1023
		bank.Load(idx, &p)
		p.X += 1
		bank.Store(idx, &p)
	}
}

// TestBytesPerParticleMatchesFieldSet is the drift guard for the derived
// BytesPerParticle constant: it must equal the summed element sizes of the
// actual SoA columns. Adding a field to the Bank without updating the
// constant (and the snapshot format that shares the field set) fails here.
func TestBytesPerParticleMatchesFieldSet(t *testing.T) {
	b := NewBank(SoA, 1)
	got := 0
	for _, col := range []int{
		int(unsafe.Sizeof(b.x[0])), int(unsafe.Sizeof(b.y[0])),
		int(unsafe.Sizeof(b.ux[0])), int(unsafe.Sizeof(b.uy[0])),
		int(unsafe.Sizeof(b.energy[0])), int(unsafe.Sizeof(b.weight[0])),
		int(unsafe.Sizeof(b.mfp[0])), int(unsafe.Sizeof(b.tcens[0])),
		int(unsafe.Sizeof(b.deposit[0])), int(unsafe.Sizeof(b.sigmaA[0])),
		int(unsafe.Sizeof(b.sigmaS[0])), int(unsafe.Sizeof(b.cellX[0])),
		int(unsafe.Sizeof(b.cellY[0])), int(unsafe.Sizeof(b.xsIndex[0])),
		int(unsafe.Sizeof(b.rngCounter[0])), int(unsafe.Sizeof(b.id[0])),
		int(unsafe.Sizeof(b.status[0])),
	} {
		got += col
	}
	if got != BytesPerParticle {
		t.Fatalf("SoA field set is %d bytes per particle, BytesPerParticle = %d", got, BytesPerParticle)
	}
	// The working copy must not have grown fields the bank doesn't store
	// (padding aside, the struct covers exactly the columns).
	nFields := reflect.TypeOf(Particle{}).NumField()
	if nFields != 17 {
		t.Fatalf("Particle has %d fields, bank stores 17 columns — update Bank, BytesPerParticle and the core snapshot format together", nFields)
	}
}

// TestTotalsFieldDirectFastPaths checks the layout-specific TotalWeight /
// TotalEnergy paths against the one-Load-per-particle reference they
// replaced, with a population that includes dead particles.
func TestTotalsFieldDirectFastPaths(t *testing.T) {
	m, err := mesh.New(64, 64, mesh.Extent, mesh.Extent, mesh.VacuumDensity)
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []Layout{AoS, SoA} {
		b := NewBank(layout, 257)
		Populate(b, m, mesh.SourceBox{X0: 0, X1: 1, Y0: 0, Y1: 1}, 1e-7, 42)
		var p Particle
		for i := 0; i < b.Len(); i++ {
			b.Load(i, &p)
			p.Weight = 0.25 + float64(i%7)/8
			p.Energy = 1e6 + float64(i)*31
			if i%5 == 0 {
				p.Status = Dead
			} else if i%3 == 0 {
				p.Status = Census
			}
			b.Store(i, &p)
		}

		var wantW, wantE float64
		for i := 0; i < b.Len(); i++ {
			b.Load(i, &p)
			wantW += p.Weight
			if p.Status != Dead {
				wantE += p.Weight * p.Energy
			}
		}
		if got := b.TotalWeight(); got != wantW {
			t.Errorf("%v: TotalWeight = %g, want %g", layout, got, wantW)
		}
		if got := b.TotalEnergy(); got != wantE {
			t.Errorf("%v: TotalEnergy = %g, want %g", layout, got, wantE)
		}
	}
}
