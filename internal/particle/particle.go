// Package particle implements the particle data store of the neutral
// mini-app in both Array-of-Structures (AoS) and Structure-of-Arrays (SoA)
// layouts.
//
// The paper (§VI-D) finds that on CPUs the intuitive AoS layout beats SoA
// for the Over Particles scheme: a particle is loaded once into registers
// and worked on for its whole history, so packing its fields into one or two
// cache lines minimises redundant memory traffic, whereas SoA touches one
// cache line per field and uses a single element from each. GPUs only use
// SoA (coalescing). Both layouts live behind the Bank type so every kernel
// runs unchanged over either.
package particle

import (
	"fmt"

	"repro/internal/rng"
)

// Status describes where a particle is in its life cycle.
type Status uint8

const (
	// Alive particles still have time left in the current timestep.
	Alive Status = iota
	// Census particles have exhausted the timestep and await the next.
	Census
	// Dead particles were terminated by the weight/energy cutoffs after
	// absorption reduced them below interest.
	Dead
	// Escaped particles left the domain through a vacuum boundary; their
	// weight-energy is accounted as leakage, not deposition.
	Escaped
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Census:
		return "census"
	case Dead:
		return "dead"
	case Escaped:
		return "escaped"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Particle is the register-resident working copy of one particle history.
// The Over Particles scheme keeps one of these in locals for the entire
// history; the Over Events scheme loads and stores it around every kernel.
type Particle struct {
	X, Y   float64 // position in metres
	UX, UY float64 // unit direction cosines
	Energy float64 // kinetic energy in eV
	Weight float64 // statistical weight (variance reduction, §IV-E)

	// MFPToCollision is the sampled number of mean free paths remaining
	// until the next collision. It is consumed as the particle moves
	// through material and resampled after each collision.
	MFPToCollision float64
	// TimeToCensus is the remaining time in the current timestep, in
	// seconds.
	TimeToCensus float64
	// Deposit is the particle-local energy-deposition register; it is
	// flushed into the tally mesh at every facet encounter and at census
	// (the atomic read-modify-write the paper studies).
	Deposit float64

	// CachedSigmaA and CachedSigmaS hold the microscopic cross sections
	// for the particle's current energy. They only need refreshing when
	// the energy changes, i.e. after a collision (paper §V-A). Over
	// Particles keeps them in registers for the whole history; Over
	// Events must store them per particle and stream them from memory
	// every round — one of the paper's key contrasts. A negative value
	// marks them invalid.
	CachedSigmaA, CachedSigmaS float64

	CellX, CellY int32 // containing mesh cell
	// XSIndex caches the cross-section table bin of the last lookup so a
	// linear walk replaces a binary search (§VI-A).
	XSIndex int32

	// RNGCounter resumes the particle's counter-based random stream.
	RNGCounter uint64
	ID         uint64
	Status     Status
}

// Stream reconstructs the particle's random stream under the given seed.
func (p *Particle) Stream(seed uint64) rng.Stream {
	return rng.ResumeStream(seed, p.ID, p.RNGCounter)
}

// SaveStream persists the stream counter back into the particle.
func (p *Particle) SaveStream(s *rng.Stream) { p.RNGCounter = s.Counter() }
