package particle

import (
	"testing"

	"repro/internal/mesh"
)

// fillRecord builds a distinguishable particle record.
func fillRecord(i int) Particle {
	return Particle{
		X: float64(i), Y: float64(i) + 0.5,
		UX: 1, UY: -1,
		Energy: 1e6 + float64(i), Weight: 0.25,
		MFPToCollision: 2, TimeToCensus: 1e-7,
		CachedSigmaA: -1, CachedSigmaS: -1,
		CellX: int32(i % 7), CellY: int32(i % 5),
		RNGCounter: uint64(i) * 3, ID: uint64(i) + 100,
		Status: Alive,
	}
}

// TestAppendBothLayouts: Append must grow either layout and preserve every
// existing record and the appended one.
func TestAppendBothLayouts(t *testing.T) {
	for _, layout := range []Layout{AoS, SoA} {
		t.Run(layout.String(), func(t *testing.T) {
			b := NewBank(layout, 3)
			for i := 0; i < 3; i++ {
				p := fillRecord(i)
				b.Store(i, &p)
			}
			for i := 3; i < 40; i++ {
				p := fillRecord(i)
				if got := b.Append(&p); got != i {
					t.Fatalf("Append returned slot %d, want %d", got, i)
				}
			}
			if b.Len() != 40 {
				t.Fatalf("Len = %d, want 40", b.Len())
			}
			var p Particle
			for i := 0; i < 40; i++ {
				b.Load(i, &p)
				if want := fillRecord(i); p != want {
					t.Fatalf("slot %d corrupted:\ngot  %+v\nwant %+v", i, p, want)
				}
			}
		})
	}
}

// TestResizeReusesCapacity: shrinking keeps the backing arrays, so a
// shrink-then-regrow cycle (ensemble Reset after a weight-window run) does
// not reallocate, and regrown slots read as blank records even when the
// array previously held data.
func TestResizeReusesCapacity(t *testing.T) {
	for _, layout := range []Layout{AoS, SoA} {
		t.Run(layout.String(), func(t *testing.T) {
			b := NewBank(layout, 8)
			for i := 0; i < 8; i++ {
				p := fillRecord(i)
				b.Store(i, &p)
			}
			b.Resize(3)
			if b.Len() != 3 {
				t.Fatalf("Len after shrink = %d, want 3", b.Len())
			}
			b.Resize(8)
			var p, zero Particle
			for i := 3; i < 8; i++ {
				b.Load(i, &p)
				if p != zero {
					t.Fatalf("regrown slot %d holds stale data: %+v", i, p)
				}
			}
			// The first three survived the cycle.
			for i := 0; i < 3; i++ {
				b.Load(i, &p)
				if want := fillRecord(i); p != want {
					t.Fatalf("slot %d lost in resize: %+v", i, p)
				}
			}
		})
	}
}

// TestPopulateFamilyOffsetsIdentities: replica families must shift both the
// stored IDs and the sampled birth states, and family 0 must be Populate.
func TestPopulateFamilyOffsetsIdentities(t *testing.T) {
	m, err := mesh.New(16, 16, 1, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	src := mesh.SourceBox{X0: 0.2, X1: 0.8, Y0: 0.2, Y1: 0.8}
	const n = 50
	const seed = 42

	plain := NewBank(AoS, n)
	Populate(plain, m, src, 1e-7, seed)
	fam0 := NewBank(AoS, n)
	PopulateFamily(fam0, m, src, 1e-7, seed, 0)
	fam2 := NewBank(AoS, n)
	PopulateFamily(fam2, m, src, 1e-7, seed, 2*n)

	var p0, p1, p2 Particle
	identical := 0
	for i := 0; i < n; i++ {
		plain.Load(i, &p0)
		fam0.Load(i, &p1)
		if p0 != p1 {
			t.Fatalf("family 0 differs from Populate at slot %d", i)
		}
		fam2.Load(i, &p2)
		if p2.ID != uint64(2*n+i) {
			t.Fatalf("family 2 slot %d id %d, want %d", i, p2.ID, 2*n+i)
		}
		if p0.X == p2.X && p0.Y == p2.Y {
			identical++
		}
	}
	if identical == n {
		t.Error("family 2 reproduced family 0's birth sample; streams overlap")
	}
}
