// Package hot implements a compact analogue of the arch project's hot
// mini-app: a conjugate-gradient solver for implicit heat conduction on a
// structured 2D grid.
//
// The paper uses hot alongside flow as a memory-bandwidth-bound contrast to
// neutral in its thread-scaling study (Fig 3). Each CG iteration is a
// five-point stencil apply plus a handful of vector operations and
// reductions — all long unit-stride streams.
//
// The system solved per timestep is (I - alpha * Laplacian) T' = T with
// homogeneous Dirichlet boundaries; the operator is symmetric positive
// definite, so unpreconditioned CG converges.
package hot

import (
	"errors"
	"math"
	"sync"
)

// Solver holds the grid and CG work vectors.
type Solver struct {
	NX, NY int
	// Alpha is the implicit diffusion number (conductivity * dt / dx^2).
	Alpha float64
	// Tol is the relative residual tolerance for CG.
	Tol float64
	// MaxIter caps CG iterations per timestep.
	MaxIter int

	t          []float64 // temperature field
	r, p, q, z []float64 // CG work vectors
	steps      int
	lastIters  int
}

// New builds a solver with a hot square in the grid centre.
func New(nx, ny int, alpha float64) (*Solver, error) {
	if nx < 3 || ny < 3 {
		return nil, errors.New("hot: grid must be at least 3x3")
	}
	if alpha <= 0 {
		return nil, errors.New("hot: alpha must be positive")
	}
	s := &Solver{
		NX: nx, NY: ny, Alpha: alpha,
		Tol: 1e-8, MaxIter: 10000,
		t: make([]float64, nx*ny),
		r: make([]float64, nx*ny),
		p: make([]float64, nx*ny),
		q: make([]float64, nx*ny),
		z: make([]float64, nx*ny),
	}
	for j := ny / 3; j < 2*ny/3; j++ {
		for i := nx / 3; i < 2*nx/3; i++ {
			s.t[j*nx+i] = 100
		}
	}
	return s, nil
}

// Field returns the temperature field (not a copy).
func (s *Solver) Field() []float64 { return s.t }

// Steps reports completed timesteps; LastIterations the CG iterations of
// the most recent one.
func (s *Solver) Steps() int          { return s.steps }
func (s *Solver) LastIterations() int { return s.lastIters }

// Heat returns the total field energy (not conserved: Dirichlet walls leak).
func (s *Solver) Heat() float64 {
	var h float64
	for _, v := range s.t {
		h += v
	}
	return h
}

// apply computes q = (I - alpha*Laplacian) p with Dirichlet walls, split
// across threads by row bands.
func (s *Solver) apply(p, q []float64, threads int) {
	nx, ny, alpha := s.NX, s.NY, s.Alpha
	parallelRows(ny, threads, func(j0, j1 int) {
		for j := j0; j < j1; j++ {
			for i := 0; i < nx; i++ {
				c := p[j*nx+i]
				var lap float64
				if i > 0 {
					lap += p[j*nx+i-1] - c
				} else {
					lap -= c
				}
				if i < nx-1 {
					lap += p[j*nx+i+1] - c
				} else {
					lap -= c
				}
				if j > 0 {
					lap += p[(j-1)*nx+i] - c
				} else {
					lap -= c
				}
				if j < ny-1 {
					lap += p[(j+1)*nx+i] - c
				} else {
					lap -= c
				}
				q[j*nx+i] = c - alpha*lap
			}
		}
	})
}

// Step advances one implicit timestep by solving the SPD system with CG,
// returning the iteration count.
func (s *Solver) Step(threads int) int {
	n := s.NX * s.NY
	// b is the current field; initial guess x = b.
	x := s.t
	// r = b - A x
	s.apply(x, s.q, threads)
	for i := 0; i < n; i++ {
		s.r[i] = x[i] - s.q[i]
		s.p[i] = s.r[i]
	}
	rr := dot(s.r, s.r, threads)
	b2 := dot(x, x, threads)
	if b2 == 0 {
		b2 = 1
	}
	iters := 0
	for ; iters < s.MaxIter && rr > s.Tol*s.Tol*b2; iters++ {
		s.apply(s.p, s.q, threads)
		alpha := rr / dot(s.p, s.q, threads)
		axpy(x, s.p, alpha, threads)
		axpy(s.r, s.q, -alpha, threads)
		rrNew := dot(s.r, s.r, threads)
		beta := rrNew / rr
		rr = rrNew
		xpay(s.p, s.r, beta, threads)
	}
	s.steps++
	s.lastIters = iters
	return iters
}

// Residual returns ||b - Ax|| / ||b|| for the last solve's state.
func (s *Solver) Residual(threads int) float64 {
	s.apply(s.t, s.q, threads)
	// After the solve, t holds x and the residual r is maintained; use
	// the recomputed one for an honest answer. b is unavailable after
	// the in-place update, so report the CG-maintained residual norm.
	return math.Sqrt(dot(s.r, s.r, threads)) / math.Sqrt(dot(s.t, s.t, threads)+1e-300)
}

// Run advances n timesteps and returns total CG iterations.
func (s *Solver) Run(n, threads int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += s.Step(threads)
	}
	return total
}

// BytesPerIteration estimates per-CG-iteration memory traffic: the stencil
// apply streams p and q, and the vector updates stream x, r, p again.
func (s *Solver) BytesPerIteration() float64 {
	return float64(s.NX*s.NY) * 8 * 7
}

// dot computes the inner product with a parallel reduction.
func dot(a, b []float64, threads int) float64 {
	if threads < 2 {
		var sum float64
		for i := range a {
			sum += a[i] * b[i]
		}
		return sum
	}
	partial := make([]float64, threads)
	var wg sync.WaitGroup
	wg.Add(threads)
	n := len(a)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			var sum float64
			for i := w * n / threads; i < (w+1)*n/threads; i++ {
				sum += a[i] * b[i]
			}
			partial[w] = sum
		}(w)
	}
	wg.Wait()
	var sum float64
	for _, p := range partial {
		sum += p
	}
	return sum
}

// axpy computes y += a*x in parallel.
func axpy(y, x []float64, a float64, threads int) {
	parallelRange(len(y), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	})
}

// xpay computes p = r + beta*p in parallel.
func xpay(p, r []float64, beta float64, threads int) {
	parallelRange(len(p), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p[i] = r[i] + beta*p[i]
		}
	})
}

func parallelRange(n, threads int, body func(lo, hi int)) {
	if threads < 2 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			body(w*n/threads, (w+1)*n/threads)
		}(w)
	}
	wg.Wait()
}

func parallelRows(ny, threads int, body func(j0, j1 int)) {
	if threads < 2 {
		body(0, ny)
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			body(w*ny/threads, (w+1)*ny/threads)
		}(w)
	}
	wg.Wait()
}
