package hot

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 10, 0.1); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := New(10, 10, 0); err == nil {
		t.Error("zero alpha accepted")
	}
	if _, err := New(10, 10, -1); err == nil {
		t.Error("negative alpha accepted")
	}
}

func TestCGConverges(t *testing.T) {
	s, err := New(64, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	iters := s.Step(4)
	if iters <= 0 || iters >= s.MaxIter {
		t.Fatalf("CG iterations = %d (max %d)", iters, s.MaxIter)
	}
	if r := s.Residual(4); r > 1e-6 {
		t.Fatalf("post-solve residual = %.3g", r)
	}
}

// TestOperatorSymmetry: CG requires a symmetric operator; check
// dot(A x, y) == dot(x, A y) on random-ish vectors.
func TestOperatorSymmetry(t *testing.T) {
	s, _ := New(24, 24, 0.7)
	n := 24 * 24
	x := make([]float64, n)
	y := make([]float64, n)
	ax := make([]float64, n)
	ay := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = math.Sin(float64(3*i + 1))
		y[i] = math.Cos(float64(7*i + 2))
	}
	s.apply(x, ax, 2)
	s.apply(y, ay, 2)
	lhs := dot(ax, y, 1)
	rhs := dot(x, ay, 1)
	if math.Abs(lhs-rhs) > 1e-9*math.Max(math.Abs(lhs), 1) {
		t.Fatalf("operator not symmetric: %v vs %v", lhs, rhs)
	}
}

// TestDiffusionSmooths: the hot square must spread and its peak decay,
// while the total heat decreases only through the Dirichlet walls.
func TestDiffusionSmooths(t *testing.T) {
	s, _ := New(48, 48, 0.4)
	h0 := s.Heat()
	peak := func() float64 {
		best := -1.0
		for _, v := range s.Field() {
			if v > best {
				best = v
			}
		}
		return best
	}
	p0 := peak()
	s.Run(5, 4)
	if p := peak(); p >= p0 {
		t.Fatalf("peak did not decay: %v -> %v", p0, p)
	}
	h := s.Heat()
	if h > h0 {
		t.Fatalf("heat increased: %v -> %v", h0, h)
	}
	if h < 0.2*h0 {
		t.Fatalf("heat vanished implausibly fast: %v -> %v", h0, h)
	}
}

// TestThreadCountInvariance: dot products partial-sum in a fixed
// per-thread-count order, so different thread counts may differ by
// rounding only.
func TestThreadCountInvariance(t *testing.T) {
	a, _ := New(48, 48, 0.4)
	b, _ := New(48, 48, 0.4)
	a.Run(3, 1)
	b.Run(3, 6)
	fa, fb := a.Field(), b.Field()
	for i := range fa {
		if d := math.Abs(fa[i] - fb[i]); d > 1e-6*(1+math.Abs(fa[i])) {
			t.Fatalf("cell %d differs beyond tolerance: %v vs %v", i, fa[i], fb[i])
		}
	}
}

func TestUniformZeroFieldNoIterations(t *testing.T) {
	s, _ := New(16, 16, 0.3)
	for i := range s.t {
		s.t[i] = 0
	}
	if iters := s.Step(2); iters != 0 {
		t.Fatalf("CG on zero field took %d iterations", iters)
	}
}

func TestBytesPerIteration(t *testing.T) {
	s, _ := New(10, 10, 0.3)
	if s.BytesPerIteration() != 10*10*8*7 {
		t.Fatal("BytesPerIteration wrong")
	}
}

func BenchmarkCGStep(b *testing.B) {
	s, _ := New(256, 256, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(4)
		b.StopTimer()
		// Reheat so every iteration solves the same problem.
		for j := range s.t {
			s.t[j] = 0
		}
		for j := 256 / 3; j < 2*256/3; j++ {
			for i := 256 / 3; i < 2*256/3; i++ {
				s.t[j*256+i] = 100
			}
		}
		b.StartTimer()
	}
}
