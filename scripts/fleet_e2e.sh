#!/usr/bin/env bash
# fleet_e2e.sh — kill-one-worker fleet end-to-end check.
#
# Boots a coordinator and two workers, submits an ensemble job, SIGKILLs
# one worker mid-run, and asserts that the job still completes with physics
# bit-identical to a single-process reference run — the fleet's core
# robustness promise — and that the failover is visible on /metrics
# (fleet_reschedules_total >= 1).
#
# Usage: scripts/fleet_e2e.sh [base-port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${1:-18180}
COORD="127.0.0.1:$PORT"
W1="127.0.0.1:$((PORT + 1))"
W2="127.0.0.1:$((PORT + 2))"
REF="127.0.0.1:$((PORT + 3))"
BIN=$(mktemp -d)/neutral-serve
# An ensemble wide and slow enough that shards are in flight when the
# worker dies; threads=1 keeps every replica bit-reproducible.
SPEC='{"problem":"csp","nx":64,"particles":20000,"steps":10,"threads":1,"seed":42,"replicas":3,"keep_cells":true}'

go build -o "$BIN" ./cmd/neutral-serve

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -sf "http://$1/healthz" >/dev/null && return 0
    sleep 0.1
  done
  echo "FAIL: $1 never became healthy" >&2
  exit 1
}

# Reference: the same ensemble on a plain single-process server.
"$BIN" -addr "$REF" &
PIDS+=($!)
wait_healthy "$REF"
REF_JOB=$(curl -sf -X POST "http://$REF/v1/jobs" -d "$SPEC" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
curl -sf "http://$REF/v1/jobs/$REF_JOB/result?wait=true" > /tmp/fleet_e2e_ref.json

# The fleet: coordinator plus two workers. A short lease makes the dead
# worker detectable within CI patience.
"$BIN" -addr "$COORD" -fleet -lease 2s &
PIDS+=($!)
wait_healthy "$COORD"
"$BIN" -addr "$W1" -worker -join "http://$COORD" -name w1 &
W1_PID=$!
PIDS+=($W1_PID)
"$BIN" -addr "$W2" -worker -join "http://$COORD" -name w2 &
PIDS+=($!)
wait_healthy "$W1"
wait_healthy "$W2"

# Both workers registered and alive before dispatch begins.
for _ in $(seq 1 100); do
  ALIVE=$(curl -sf "http://$COORD/v1/fleet/workers" | python3 -c 'import json,sys; print(sum(1 for w in json.load(sys.stdin) if w["alive"]))')
  [ "$ALIVE" = 2 ] && break
  sleep 0.1
done
[ "$ALIVE" = 2 ] || { echo "FAIL: expected 2 alive workers, saw $ALIVE" >&2; exit 1; }

JOB=$(curl -sf -X POST "http://$COORD/v1/jobs" -d "$SPEC" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')

# Wait until w1 holds at least one shard, then SIGKILL it mid-run — no
# goodbye, no checkpoint flush; the coordinator must recover on its own.
for _ in $(seq 1 200); do
  BUSY=$(curl -sf "http://$COORD/v1/fleet/workers" | python3 -c 'import json,sys; print(next((w["dispatches"] for w in json.load(sys.stdin) if w["name"]=="w1"), 0))')
  [ "$BUSY" -ge 1 ] && break
  sleep 0.1
done
[ "$BUSY" -ge 1 ] || { echo "FAIL: w1 never received a shard" >&2; exit 1; }
kill -9 "$W1_PID"
echo "killed worker w1 (pid $W1_PID) mid-run"

curl -sf --max-time 180 "http://$COORD/v1/jobs/$JOB/result?wait=true" > /tmp/fleet_e2e_fleet.json

# Physics must be bit-identical to the reference; timing fields may differ.
python3 - <<'EOF'
import json
ref = json.load(open("/tmp/fleet_e2e_ref.json"))
got = json.load(open("/tmp/fleet_e2e_fleet.json"))
fields = ["tally_total", "cells", "facet_events", "collision_events",
          "census_events", "deaths", "escapes", "conservation_error", "leakage"]
for f in fields:
    assert got.get(f) == ref.get(f), f"{f} differs:\n fleet {got.get(f)}\n ref   {ref.get(f)}"
ens_fields = ["mean_total", "replica_totals", "rel_err", "total_rel_err",
              "avg_rel_err", "max_rel_err", "scored_cells"]
for f in ens_fields:
    assert got["ensemble"][f] == ref["ensemble"][f], \
        f"ensemble.{f} differs:\n fleet {got['ensemble'][f]}\n ref   {ref['ensemble'][f]}"
print("physics bit-identical across worker kill:",
      "mean_total =", got["ensemble"]["mean_total"])
EOF

# The failover must have actually happened and be visible on /metrics.
RESCHED=$(curl -sf "http://$COORD/metrics" | awk '$1 == "fleet_reschedules_total" {print int($2)}')
[ "${RESCHED:-0}" -ge 1 ] || { echo "FAIL: fleet_reschedules_total = ${RESCHED:-0}, want >= 1" >&2; exit 1; }
echo "PASS: kill-one-worker e2e (fleet_reschedules_total=$RESCHED)"
