#!/usr/bin/env bash
# fleet_e2e.sh — fleet end-to-end checks.
#
# Phase 1 (kill one worker): boots a coordinator and two workers, submits an
# ensemble job, SIGKILLs one worker mid-run, and asserts that the job still
# completes with physics bit-identical to a single-process reference run —
# the fleet's core robustness promise — and that the failover is visible on
# /metrics (fleet_reschedules_total >= 1).
#
# Phase 2 (auth + kill the coordinator): boots an authenticated cluster over
# a filesystem blob store, asserts keyless requests are 401 and that a
# rate-limited tenant's second rapid submission is shed 429 with a
# Retry-After header, then SIGKILLs the coordinator mid-ensemble once a
# checkpoint has landed in the store, restarts it, resubmits, and asserts
# the ensemble completes bit-identical — shards resumed from the store
# (fleet_store_seeds_total + neutral_blob_result_hits_total >= 1), proving
# the workers are stateless and the store carries all durable state.
#
# Usage: scripts/fleet_e2e.sh [base-port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${1:-18180}
COORD="127.0.0.1:$PORT"
W1="127.0.0.1:$((PORT + 1))"
W2="127.0.0.1:$((PORT + 2))"
REF="127.0.0.1:$((PORT + 3))"
BIN=$(mktemp -d)/neutral-serve
# An ensemble wide and slow enough that shards are in flight when the
# worker dies; threads=1 keeps every replica bit-reproducible.
SPEC='{"problem":"csp","nx":64,"particles":20000,"steps":10,"threads":1,"seed":42,"replicas":3,"keep_cells":true}'

go build -o "$BIN" ./cmd/neutral-serve

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -sf "http://$1/healthz" >/dev/null && return 0
    sleep 0.1
  done
  echo "FAIL: $1 never became healthy" >&2
  exit 1
}

# Reference: the same ensemble on a plain single-process server.
"$BIN" -addr "$REF" &
PIDS+=($!)
wait_healthy "$REF"
REF_JOB=$(curl -sf -X POST "http://$REF/v1/jobs" -d "$SPEC" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
curl -sf "http://$REF/v1/jobs/$REF_JOB/result?wait=true" > /tmp/fleet_e2e_ref.json

# The fleet: coordinator plus two workers. A short lease makes the dead
# worker detectable within CI patience.
"$BIN" -addr "$COORD" -fleet -lease 2s &
PIDS+=($!)
wait_healthy "$COORD"
"$BIN" -addr "$W1" -worker -join "http://$COORD" -name w1 &
W1_PID=$!
PIDS+=($W1_PID)
"$BIN" -addr "$W2" -worker -join "http://$COORD" -name w2 &
PIDS+=($!)
wait_healthy "$W1"
wait_healthy "$W2"

# Both workers registered and alive before dispatch begins.
for _ in $(seq 1 100); do
  ALIVE=$(curl -sf "http://$COORD/v1/fleet/workers" | python3 -c 'import json,sys; print(sum(1 for w in json.load(sys.stdin) if w["alive"]))')
  [ "$ALIVE" = 2 ] && break
  sleep 0.1
done
[ "$ALIVE" = 2 ] || { echo "FAIL: expected 2 alive workers, saw $ALIVE" >&2; exit 1; }

JOB=$(curl -sf -X POST "http://$COORD/v1/jobs" -d "$SPEC" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')

# Wait until w1 holds at least one shard, then SIGKILL it mid-run — no
# goodbye, no checkpoint flush; the coordinator must recover on its own.
for _ in $(seq 1 200); do
  BUSY=$(curl -sf "http://$COORD/v1/fleet/workers" | python3 -c 'import json,sys; print(next((w["dispatches"] for w in json.load(sys.stdin) if w["name"]=="w1"), 0))')
  [ "$BUSY" -ge 1 ] && break
  sleep 0.1
done
[ "$BUSY" -ge 1 ] || { echo "FAIL: w1 never received a shard" >&2; exit 1; }
kill -9 "$W1_PID"
echo "killed worker w1 (pid $W1_PID) mid-run"

curl -sf --max-time 180 "http://$COORD/v1/jobs/$JOB/result?wait=true" > /tmp/fleet_e2e_fleet.json

# Physics must be bit-identical to the reference; timing fields may differ.
python3 - <<'EOF'
import json
ref = json.load(open("/tmp/fleet_e2e_ref.json"))
got = json.load(open("/tmp/fleet_e2e_fleet.json"))
fields = ["tally_total", "cells", "facet_events", "collision_events",
          "census_events", "deaths", "escapes", "conservation_error", "leakage"]
for f in fields:
    assert got.get(f) == ref.get(f), f"{f} differs:\n fleet {got.get(f)}\n ref   {ref.get(f)}"
ens_fields = ["mean_total", "replica_totals", "rel_err", "total_rel_err",
              "avg_rel_err", "max_rel_err", "scored_cells"]
for f in ens_fields:
    assert got["ensemble"][f] == ref["ensemble"][f], \
        f"ensemble.{f} differs:\n fleet {got['ensemble'][f]}\n ref   {ref['ensemble'][f]}"
print("physics bit-identical across worker kill:",
      "mean_total =", got["ensemble"]["mean_total"])
EOF

# The failover must have actually happened and be visible on /metrics.
RESCHED=$(curl -sf "http://$COORD/metrics" | awk '$1 == "fleet_reschedules_total" {print int($2)}')
[ "${RESCHED:-0}" -ge 1 ] || { echo "FAIL: fleet_reschedules_total = ${RESCHED:-0}, want >= 1" >&2; exit 1; }
echo "PASS: kill-one-worker e2e (fleet_reschedules_total=$RESCHED)"

# ---------------------------------------------------------------------------
# Phase 2: authenticated cluster over a blob store; kill the coordinator.
# ---------------------------------------------------------------------------
C2="127.0.0.1:$((PORT + 4))"
W3="127.0.0.1:$((PORT + 5))"
W4="127.0.0.1:$((PORT + 6))"
WORK=$(mktemp -d)
BLOB="$WORK/blob"
KEYS="$WORK/keys.json"
cat > "$KEYS" <<'JSON'
{"tenants": [
  {"name": "ops",     "key": "ops-secret"},
  {"name": "fleet",   "key": "fleet-secret"},
  {"name": "limited", "key": "limited-secret", "rate": 0.1, "burst": 1}
]}
JSON
TINY='{"problem":"csp","nx":32,"particles":200,"steps":1,"threads":1,"seed":7}'

start_coordinator() {
  "$BIN" -addr "$C2" -fleet -lease 2s -keys "$KEYS" -blob "$BLOB" -fleet-key fleet-secret &
  C2_PID=$!
  PIDS+=($C2_PID)
  wait_healthy "$C2"
}
start_coordinator
"$BIN" -addr "$W3" -worker -join "http://$C2" -name w3 -fleet-key fleet-secret &
PIDS+=($!)
"$BIN" -addr "$W4" -worker -join "http://$C2" -name w4 -fleet-key fleet-secret &
PIDS+=($!)
wait_healthy "$W3"
wait_healthy "$W4"

AUTH_OPS=(-H "Authorization: Bearer ops-secret")
for _ in $(seq 1 100); do
  ALIVE=$(curl -sf "${AUTH_OPS[@]}" "http://$C2/v1/fleet/workers" | python3 -c 'import json,sys; print(sum(1 for w in json.load(sys.stdin) if w["alive"]))')
  [ "$ALIVE" = 2 ] && break
  sleep 0.1
done
[ "$ALIVE" = 2 ] || { echo "FAIL: expected 2 alive auth-fleet workers, saw $ALIVE" >&2; exit 1; }

# No key -> 401; wrong key -> 401; a good key passes.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$C2/v1/jobs")
[ "$CODE" = 401 ] || { echo "FAIL: keyless request got $CODE, want 401" >&2; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer wrong" "http://$C2/v1/jobs")
[ "$CODE" = 401 ] || { echo "FAIL: bad-key request got $CODE, want 401" >&2; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' "${AUTH_OPS[@]}" "http://$C2/v1/jobs")
[ "$CODE" = 200 ] || { echo "FAIL: good-key request got $CODE, want 200" >&2; exit 1; }
echo "auth: 401 without key, 200 with key"

# The rate-limited tenant (0.1 jobs/s, burst 1): first submit admitted, the
# rapid second one shed 429 with a Retry-After the client can obey.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer limited-secret" -X POST "http://$C2/v1/jobs" -d "$TINY")
[ "$CODE" = 200 ] || [ "$CODE" = 202 ] || { echo "FAIL: limited tenant's first submit got $CODE" >&2; exit 1; }
HDRS=$(mktemp)
CODE=$(curl -s -o /dev/null -D "$HDRS" -w '%{http_code}' -H "Authorization: Bearer limited-secret" -X POST "http://$C2/v1/jobs" -d "$TINY")
[ "$CODE" = 429 ] || { echo "FAIL: limited tenant's second submit got $CODE, want 429" >&2; exit 1; }
RETRY_AFTER=$(awk 'tolower($1) == "retry-after:" {gsub("\r",""); print $2}' "$HDRS")
[ -n "$RETRY_AFTER" ] && [ "$RETRY_AFTER" -ge 1 ] || { echo "FAIL: 429 Retry-After is '$RETRY_AFTER', want >= 1s" >&2; exit 1; }
echo "rate limit: second submit shed 429 with Retry-After=${RETRY_AFTER}s"

# Kill the coordinator mid-ensemble once a shard checkpoint reached the
# store, restart it over the same store, and resubmit: every shard must
# resume from the store, not start over.
curl -sf "${AUTH_OPS[@]}" -X POST "http://$C2/v1/jobs" -d "$SPEC" >/dev/null
for _ in $(seq 1 300); do
  CKPTS=$(ls "$BLOB/checkpoints" 2>/dev/null | wc -l)
  [ "$CKPTS" -ge 1 ] && break
  sleep 0.1
done
[ "$CKPTS" -ge 1 ] || { echo "FAIL: no checkpoint reached the blob store" >&2; exit 1; }
kill -9 "$C2_PID"
echo "killed coordinator (pid $C2_PID) mid-ensemble with $CKPTS checkpoint(s) in the store"
sleep 0.5

start_coordinator
# The workers' agents re-register on their next heartbeat against the
# restarted (and now empty) registry.
for _ in $(seq 1 200); do
  ALIVE=$(curl -sf "${AUTH_OPS[@]}" "http://$C2/v1/fleet/workers" | python3 -c 'import json,sys; print(sum(1 for w in json.load(sys.stdin) if w["alive"]))' 2>/dev/null || echo 0)
  [ "$ALIVE" = 2 ] && break
  sleep 0.1
done
[ "$ALIVE" = 2 ] || { echo "FAIL: workers never re-registered after coordinator restart, saw $ALIVE" >&2; exit 1; }

JOB2=$(curl -sf "${AUTH_OPS[@]}" -X POST "http://$C2/v1/jobs" -d "$SPEC" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
curl -sf --max-time 180 "${AUTH_OPS[@]}" "http://$C2/v1/jobs/$JOB2/result?wait=true" > /tmp/fleet_e2e_resumed.json

python3 - <<'EOF'
import json
ref = json.load(open("/tmp/fleet_e2e_ref.json"))
got = json.load(open("/tmp/fleet_e2e_resumed.json"))
fields = ["tally_total", "cells", "facet_events", "collision_events",
          "census_events", "deaths", "escapes", "conservation_error", "leakage"]
for f in fields:
    assert got.get(f) == ref.get(f), f"{f} differs:\n resumed {got.get(f)}\n ref     {ref.get(f)}"
ens_fields = ["mean_total", "replica_totals", "rel_err", "total_rel_err",
              "avg_rel_err", "max_rel_err", "scored_cells"]
for f in ens_fields:
    assert got["ensemble"][f] == ref["ensemble"][f], \
        f"ensemble.{f} differs:\n resumed {got['ensemble'][f]}\n ref     {ref['ensemble'][f]}"
print("physics bit-identical across coordinator kill+restart:",
      "mean_total =", got["ensemble"]["mean_total"])
EOF

# The resume must have come from the store: shards seeded from persisted
# checkpoints, or finished shards served from the persisted result tier.
SEEDS=$(curl -sf "http://$C2/metrics" | awk '$1 == "fleet_store_seeds_total" {print int($2)}')
HITS=$(curl -sf "http://$C2/metrics" | awk '$1 == "neutral_blob_result_hits_total" {print int($2)}')
TOTAL=$(( ${SEEDS:-0} + ${HITS:-0} ))
[ "$TOTAL" -ge 1 ] || { echo "FAIL: store_seeds=$SEEDS blob_result_hits=$HITS, want sum >= 1" >&2; exit 1; }
echo "PASS: coordinator kill+restart e2e (store_seeds=${SEEDS:-0}, blob_result_hits=${HITS:-0}, retry_after=${RETRY_AFTER}s)"
